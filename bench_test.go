// Benchmarks regenerating the timed quantities of every table and figure in
// the paper's evaluation (one benchmark family per exhibit; see DESIGN.md's
// per-experiment index). Run with:
//
//	go test -bench=. -benchmem
//
// The workload graphs are the Table II analogues from internal/datasets;
// each benchmark times the same code path the corresponding figure
// measures (preprocessing, online query, matrix powers, ...).
package tpa

import (
	"strconv"
	"sync"
	"testing"

	"path/filepath"
	"tpa/internal/core"
	"tpa/internal/datasets"
	"tpa/internal/eval"
	"tpa/internal/experiments"
	"tpa/internal/graph"
	"tpa/internal/rwr"
	"tpa/internal/sparse"
	"tpa/internal/stream"
)

// benchDataset is the default benchmark graph (the smallest analogue, so
// full method comparisons stay fast).
const benchDataset = "Slashdot"

var (
	benchMu    sync.Mutex
	benchWalks = map[string]*graph.Walk{}
	benchPrep  = map[string]*experiments.Prepared{}
)

func benchWalk(b *testing.B, name string) (*graph.Walk, datasets.Dataset) {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	d, err := datasets.Get(name)
	if err != nil {
		b.Fatal(err)
	}
	if w, ok := benchWalks[name]; ok {
		return w, d
	}
	g, _, err := datasets.Load(name)
	if err != nil {
		b.Fatal(err)
	}
	w := graph.NewWalk(g, graph.DanglingSelfLoop)
	benchWalks[name] = w
	return w, d
}

func benchPrepared(b *testing.B, method string) (*experiments.Prepared, *graph.Walk) {
	b.Helper()
	w, d := benchWalk(b, benchDataset)
	benchMu.Lock()
	defer benchMu.Unlock()
	if p, ok := benchPrep[method]; ok {
		return p, w
	}
	opt := experiments.DefaultOptions()
	p, err := experiments.PrepareMethod(method, w, d, opt)
	if err != nil {
		b.Fatal(err)
	}
	benchPrep[method] = p
	return p, w
}

// --- Table II: dataset generation ---------------------------------------

func BenchmarkTableIIGenerate(b *testing.B) {
	d, err := datasets.Get(benchDataset)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := d.Generate()
		if g.NumNodes() != d.Nodes {
			b.Fatal("wrong size")
		}
	}
}

// --- Fig 1(a)+(b): preprocessing time (index size reported as a metric) --

func benchPreprocess(b *testing.B, method string) {
	w, d := benchWalk(b, benchDataset)
	opt := experiments.DefaultOptions()
	b.ReportAllocs()
	var bytes int64
	for i := 0; i < b.N; i++ {
		p, err := experiments.PrepareMethod(method, w, d, opt)
		if err != nil {
			b.Fatal(err)
		}
		bytes = p.IndexBytes
	}
	b.ReportMetric(float64(bytes), "index-bytes")
}

func BenchmarkFig1PreprocessTPA(b *testing.B)        { benchPreprocess(b, experiments.MethodTPA) }
func BenchmarkFig1PreprocessBearApprox(b *testing.B) { benchPreprocess(b, experiments.MethodBear) }
func BenchmarkFig1PreprocessNBLin(b *testing.B)      { benchPreprocess(b, experiments.MethodNBLin) }
func BenchmarkFig1PreprocessFORA(b *testing.B)       { benchPreprocess(b, experiments.MethodFORA) }
func BenchmarkFig1PreprocessHubPPR(b *testing.B)     { benchPreprocess(b, experiments.MethodHubPPR) }

// --- Fig 1(c): online query time -----------------------------------------

func benchOnline(b *testing.B, method string) {
	p, w := benchPrepared(b, method)
	if p.OOM {
		b.Skipf("%s over memory budget", method)
	}
	seeds := eval.RandomSeeds(w.N(), 16, 42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Query(seeds[i%len(seeds)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1cOnlineTPA(b *testing.B)        { benchOnline(b, experiments.MethodTPA) }
func BenchmarkFig1cOnlineBRPPR(b *testing.B)      { benchOnline(b, experiments.MethodBRPPR) }
func BenchmarkFig1cOnlineFORA(b *testing.B)       { benchOnline(b, experiments.MethodFORA) }
func BenchmarkFig1cOnlineBearApprox(b *testing.B) { benchOnline(b, experiments.MethodBear) }
func BenchmarkFig1cOnlineHubPPR(b *testing.B)     { benchOnline(b, experiments.MethodHubPPR) }
func BenchmarkFig1cOnlineNBLin(b *testing.B)      { benchOnline(b, experiments.MethodNBLin) }

// --- Fig 3: matrix power fill-in -----------------------------------------

func BenchmarkFig3MatrixPower(b *testing.B) {
	w, _ := benchWalk(b, benchDataset)
	m := graph.NormalizedTranspose(w)
	b.ReportAllocs()
	b.ResetTimer()
	var nnz int64
	for i := 0; i < b.N; i++ {
		p := m.Power(5, 0)
		nnz = p.NNZ()
	}
	b.ReportMetric(float64(nnz), "nnz")
}

// --- Fig 4: column-distance statistic C_i --------------------------------

func BenchmarkFig4ColumnDistance(b *testing.B) {
	opt := experiments.DefaultOptions()
	opt.Seeds = 4
	opt.Datasets = []string{benchDataset}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig 6: family drift, real vs random ----------------------------------

func BenchmarkFig6FamilyDrift(b *testing.B) {
	opt := experiments.DefaultOptions()
	opt.Seeds = 4
	opt.Datasets = []string{benchDataset}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig 7: top-k recall of TPA against BePI ground truth -----------------

func BenchmarkFig7RecallTPA(b *testing.B) {
	truth, w := benchPrepared(b, experiments.MethodBePI)
	tp, _ := benchPrepared(b, experiments.MethodTPA)
	seeds := eval.RandomSeeds(w.N(), 8, 7)
	b.ResetTimer()
	var recall float64
	for i := 0; i < b.N; i++ {
		s := seeds[i%len(seeds)]
		exact, err := truth.Query(s)
		if err != nil {
			b.Fatal(err)
		}
		approx, err := tp.Query(s)
		if err != nil {
			b.Fatal(err)
		}
		recall = eval.RecallAtK(exact, approx, 100)
	}
	b.ReportMetric(recall, "recall@100")
}

// --- Fig 8: online time as S varies ---------------------------------------

func BenchmarkFig8SweepS(b *testing.B) {
	w, _ := benchWalk(b, "Pokec")
	cfg := rwr.DefaultConfig()
	for _, s := range []int{2, 4, 6} {
		s := s
		b.Run(benchName("S", s), func(b *testing.B) {
			tp, err := core.Preprocess(w, cfg, core.Params{S: s, T: 10})
			if err != nil {
				b.Fatal(err)
			}
			seeds := eval.RandomSeeds(w.N(), 16, 11)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tp.Query(seeds[i%len(seeds)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Fig 9: part errors as T varies ---------------------------------------

func BenchmarkFig9SweepT(b *testing.B) {
	w, _ := benchWalk(b, "Pokec")
	cfg := rwr.DefaultConfig()
	seeds := eval.RandomSeeds(w.N(), 4, 13)
	for _, t := range []int{6, 10, 20} {
		t := t
		b.Run(benchName("T", t), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, _, err := experiments.ApproxPartErrors(w, seeds, cfg, core.Params{S: 5, T: t}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Table III: error statistics vs bounds ---------------------------------

func BenchmarkTableIIIPartErrors(b *testing.B) {
	w, d := benchWalk(b, benchDataset)
	cfg := rwr.DefaultConfig()
	seeds := eval.RandomSeeds(w.N(), 4, 17)
	b.ResetTimer()
	var tot float64
	for i := 0; i < b.N; i++ {
		_, _, t, err := experiments.ApproxPartErrors(w, seeds, cfg, core.Params{S: d.S, T: d.T})
		if err != nil {
			b.Fatal(err)
		}
		tot = t
	}
	b.ReportMetric(tot, "tpa-L1-error")
}

// --- Fig 10: TPA vs BePI ---------------------------------------------------

func BenchmarkFig10PreprocessBePI(b *testing.B) { benchPreprocess(b, experiments.MethodBePI) }

func BenchmarkFig10OnlineBePI(b *testing.B) { benchOnline(b, experiments.MethodBePI) }

// --- Core substrate micro-benchmarks (ablation support) --------------------

// BenchmarkCPIIteration times one propagation step, the unit cost of both
// TPA phases (Lemma 4's O(m)).
func BenchmarkCPIIteration(b *testing.B) {
	w, _ := benchWalk(b, benchDataset)
	x := sparse.NewVector(w.N())
	x[0] = 1
	y := sparse.NewVector(w.N())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.MulT(x, y)
		x, y = y, x
	}
}

// BenchmarkExactCPI times a full exact RWR solve, the online cost TPA's
// S-step family computation replaces.
func BenchmarkExactCPI(b *testing.B) {
	w, _ := benchWalk(b, benchDataset)
	cfg := rwr.DefaultConfig()
	seeds := eval.RandomSeeds(w.N(), 8, 19)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ExactRWR(w, seeds[i%len(seeds)], cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func benchName(prefix string, v int) string {
	return prefix + "=" + strconv.Itoa(v)
}

// --- Ablation: error contribution of each approximation phase --------------

func BenchmarkAblation(b *testing.B) {
	opt := experiments.DefaultOptions()
	opt.Seeds = 4
	opt.Datasets = []string{benchDataset}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Ablation(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Streaming (disk-based) operator ablation ------------------------------

// BenchmarkStreamMulT times one disk-streamed propagation step against
// BenchmarkCPIIteration's in-memory step: the cost of going out-of-core.
func BenchmarkStreamMulT(b *testing.B) {
	g, _, err := datasets.Load(benchDataset)
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "g.bin")
	ef, err := stream.Create(path, g)
	if err != nil {
		b.Fatal(err)
	}
	defer ef.Close()
	x := sparse.NewVector(ef.N())
	x[0] = 1
	y := sparse.NewVector(ef.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ef.MulT(x, y)
		x, y = y, x
	}
}
