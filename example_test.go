package tpa_test

import (
	"fmt"
	"math"

	"tpa"
)

// ExampleNew demonstrates the preprocess-once / query-many flow on a
// synthetic community graph.
func ExampleNew() {
	g := tpa.RandomCommunityGraph(1000, 12000, 8, 7)
	eng, err := tpa.New(g, tpa.Defaults())
	if err != nil {
		panic(err)
	}
	scores, err := eng.Query(123)
	if err != nil {
		panic(err)
	}
	fmt.Printf("scores for %d nodes, total mass %.2f\n", len(scores), sum(scores))
	fmt.Printf("index size: %d bytes (8 per node)\n", eng.IndexBytes())
	// Output:
	// scores for 1000 nodes, total mass 1.00
	// index size: 8000 bytes (8 per node)
}

// ExampleEngine_TopK ranks the nodes most relevant to a seed.
func ExampleEngine_TopK() {
	g := tpa.RandomCommunityGraph(1000, 12000, 8, 7)
	eng, err := tpa.New(g, tpa.Defaults())
	if err != nil {
		panic(err)
	}
	top, err := eng.TopK(123, 3)
	if err != nil {
		panic(err)
	}
	fmt.Printf("top result is the seed itself: %v\n", top[0].Index == 123)
	fmt.Printf("scores descend: %v\n", top[0].Score >= top[1].Score && top[1].Score >= top[2].Score)
	// Output:
	// top result is the seed itself: true
	// scores descend: true
}

// ExampleEngine_QueryBatch fans a batch of seed queries out over a worker
// pool; results are identical to serial Query calls, position by position.
func ExampleEngine_QueryBatch() {
	g := tpa.RandomCommunityGraph(1000, 12000, 8, 7)
	eng, err := tpa.New(g, tpa.Defaults())
	if err != nil {
		panic(err)
	}
	seeds := []int{11, 42, 11, 900}
	batch, err := eng.QueryBatch(seeds, 4) // 4 workers
	if err != nil {
		panic(err)
	}
	serial, err := eng.Query(seeds[1])
	if err != nil {
		panic(err)
	}
	var maxDiff float64
	for i := range serial {
		if d := math.Abs(batch[1][i] - serial[i]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("%d result vectors of %d scores each\n", len(batch), len(batch[0]))
	fmt.Printf("batch matches serial Query: %v\n", maxDiff == 0)
	// Output:
	// 4 result vectors of 1000 scores each
	// batch matches serial Query: true
}

// ExampleExact validates the approximation against the exact solver.
func ExampleExact() {
	g := tpa.RandomCommunityGraph(1000, 12000, 8, 7)
	eng, err := tpa.New(g, tpa.Defaults())
	if err != nil {
		panic(err)
	}
	approx, err := eng.Query(123)
	if err != nil {
		panic(err)
	}
	exact, err := tpa.Exact(g, 123, tpa.Defaults())
	if err != nil {
		panic(err)
	}
	var l1 float64
	for i := range exact {
		l1 += math.Abs(exact[i] - approx[i])
	}
	fmt.Printf("error within Theorem 2 bound: %v\n", l1 <= eng.ErrorBound())
	// Output:
	// error within Theorem 2 bound: true
}

func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}
