// Command tpa is the command-line interface to the TPA engine:
//
//	tpa preprocess -graph edges.tsv -index out.idx [-s 5 -t 10 -c 0.15]
//	tpa query      -graph edges.tsv -index out.idx -seed 42 [-k 20]
//	tpa exact      -graph edges.tsv -seed 42 [-k 20]
//
// preprocess runs TPA's one-off preprocessing phase and writes the index;
// query answers a seed with the precomputed index; exact computes the
// ground-truth RWR vector for comparison.
package main

import (
	"flag"
	"fmt"
	"os"

	"tpa"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "preprocess":
		err = cmdPreprocess(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "exact":
		err = cmdExact(os.Args[2:])
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "tpa: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tpa: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  tpa preprocess -graph <edges.tsv> -index <out.idx> [-s 5] [-t 10] [-c 0.15] [-eps 1e-9]
  tpa query      -graph <edges.tsv> -index <in.idx>  -seed <node> [-k 20]
  tpa exact      -graph <edges.tsv> -seed <node> [-k 20] [-c 0.15] [-eps 1e-9]`)
}

func commonOpts(fs *flag.FlagSet) *tpa.Options {
	o := tpa.Defaults()
	fs.Float64Var(&o.C, "c", o.C, "restart probability")
	fs.Float64Var(&o.Eps, "eps", o.Eps, "convergence tolerance")
	fs.IntVar(&o.S, "s", o.S, "neighbor-part start iteration S")
	fs.IntVar(&o.T, "t", o.T, "stranger-part start iteration T")
	return &o
}

func cmdPreprocess(args []string) error {
	fs := flag.NewFlagSet("preprocess", flag.ExitOnError)
	graphPath := fs.String("graph", "", "edge-list file (required)")
	indexPath := fs.String("index", "", "output index file (required)")
	o := commonOpts(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *graphPath == "" || *indexPath == "" {
		return fmt.Errorf("preprocess: -graph and -index are required")
	}
	g, err := tpa.LoadGraph(*graphPath)
	if err != nil {
		return err
	}
	eng, err := tpa.New(g, *o)
	if err != nil {
		return err
	}
	f, err := os.Create(*indexPath)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := eng.SaveIndex(f); err != nil {
		return err
	}
	s, t := eng.Params()
	fmt.Printf("preprocessed %d nodes / %d edges (S=%d T=%d, index %d bytes) -> %s\n",
		g.NumNodes(), g.NumEdges(), s, t, eng.IndexBytes(), *indexPath)
	return f.Close()
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	graphPath := fs.String("graph", "", "edge-list file (required)")
	indexPath := fs.String("index", "", "index file from preprocess (required)")
	seed := fs.Int("seed", -1, "seed node (required)")
	k := fs.Int("k", 20, "number of results")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *graphPath == "" || *indexPath == "" || *seed < 0 {
		return fmt.Errorf("query: -graph, -index and -seed are required")
	}
	g, err := tpa.LoadGraph(*graphPath)
	if err != nil {
		return err
	}
	f, err := os.Open(*indexPath)
	if err != nil {
		return err
	}
	defer f.Close()
	eng, err := tpa.LoadIndex(f, g)
	if err != nil {
		return err
	}
	top, err := eng.TopK(*seed, *k)
	if err != nil {
		return err
	}
	printTop(top)
	return nil
}

func cmdExact(args []string) error {
	fs := flag.NewFlagSet("exact", flag.ExitOnError)
	graphPath := fs.String("graph", "", "edge-list file (required)")
	seed := fs.Int("seed", -1, "seed node (required)")
	k := fs.Int("k", 20, "number of results")
	o := commonOpts(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *graphPath == "" || *seed < 0 {
		return fmt.Errorf("exact: -graph and -seed are required")
	}
	g, err := tpa.LoadGraph(*graphPath)
	if err != nil {
		return err
	}
	scores, err := tpa.Exact(g, *seed, *o)
	if err != nil {
		return err
	}
	printTop(tpa.TopKOf(scores, *k))
	return nil
}

func printTop(top []tpa.Entry) {
	fmt.Println("rank\tnode\tscore")
	for i, e := range top {
		fmt.Printf("%d\t%d\t%.8f\n", i+1, e.Index, e.Score)
	}
}
