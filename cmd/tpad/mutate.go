package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"
)

// tpad mutate posts edge batches to a running tpad server's
// POST /graphs/{name}/edges endpoint:
//
//	tpad mutate -graph web -add 1,2 -add 3,4 -remove 5,6
//	tpad mutate -graph web -file batch.txt
//	tpad mutate -graph web -watch live.txt -interval 1s
//
// -file applies one batch from a mutation file and exits; -watch follows a
// growing mutation file (a log of edge events), posting the new complete
// lines as a batch every interval until interrupted — the stream-shaped
// deployment where edges arrive continuously.
//
// Mutation files carry one edge event per line:
//
//	+ 12 34   add the edge 12→34
//	- 12 34   remove the edge 12→34
//	12 34     shorthand for add
//
// Blank lines and lines starting with '#' or '%' are skipped.

// edgeListFlag collects repeated -add/-remove "u,v" flags.
type edgeListFlag struct{ edges [][2]int }

func (f *edgeListFlag) String() string { return fmt.Sprint(f.edges) }

func (f *edgeListFlag) Set(s string) error {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return fmt.Errorf("want \"u,v\", got %q", s)
	}
	u, err := strconv.Atoi(strings.TrimSpace(parts[0]))
	if err != nil {
		return err
	}
	v, err := strconv.Atoi(strings.TrimSpace(parts[1]))
	if err != nil {
		return err
	}
	f.edges = append(f.edges, [2]int{u, v})
	return nil
}

func cmdMutate(args []string) error {
	fs := flag.NewFlagSet("mutate", flag.ExitOnError)
	server := fs.String("server", "http://localhost:8080", "base URL of the running tpad server")
	graph := fs.String("graph", "", "name of the graph to mutate (required)")
	var adds, removes edgeListFlag
	fs.Var(&adds, "add", "edge to insert as \"u,v\" (repeatable)")
	fs.Var(&removes, "remove", "edge to delete as \"u,v\" (repeatable)")
	file := fs.String("file", "", "mutation file to apply as one batch")
	watch := fs.String("watch", "", "mutation file to follow, posting new lines until interrupted")
	interval := fs.Duration("interval", time.Second, "poll interval for -watch")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *graph == "" {
		return fmt.Errorf("mutate: -graph is required")
	}
	if *watch != "" && (*file != "" || len(adds.edges) > 0 || len(removes.edges) > 0) {
		return fmt.Errorf("mutate: -watch cannot be combined with -file/-add/-remove")
	}
	url := strings.TrimSuffix(*server, "/") + "/graphs/" + *graph + "/edges"
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *watch != "" {
		return watchMutations(ctx, url, *watch, *interval)
	}
	batch := mutateRequest{Add: adds.edges, Remove: removes.edges}
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			return err
		}
		defer f.Close()
		fileAdds, fileRemoves, err := parseMutations(bufio.NewScanner(f))
		if err != nil {
			return fmt.Errorf("mutate: %s: %w", *file, err)
		}
		batch.Add = append(batch.Add, fileAdds...)
		batch.Remove = append(batch.Remove, fileRemoves...)
	}
	if len(batch.Add) == 0 && len(batch.Remove) == 0 {
		return fmt.Errorf("mutate: nothing to apply; use -add/-remove/-file/-watch")
	}
	return postMutation(ctx, url, batch)
}

// mutateRequest mirrors the server's POST /graphs/{name}/edges body.
type mutateRequest struct {
	Add    [][2]int `json:"add,omitempty"`
	Remove [][2]int `json:"remove,omitempty"`
}

// parseMutations reads edge events ("+ u v", "- u v", "u v") from sc.
func parseMutations(sc *bufio.Scanner) (adds, removes [][2]int, err error) {
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") || strings.HasPrefix(text, "%") {
			continue
		}
		remove := false
		switch {
		case strings.HasPrefix(text, "+"):
			text = text[1:]
		case strings.HasPrefix(text, "-"):
			remove = true
			text = text[1:]
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, nil, fmt.Errorf("line %d: want \"[+|-] u v\", got %q", line, sc.Text())
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, nil, fmt.Errorf("line %d: %w", line, err)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, nil, fmt.Errorf("line %d: %w", line, err)
		}
		if remove {
			removes = append(removes, [2]int{u, v})
		} else {
			adds = append(adds, [2]int{u, v})
		}
	}
	return adds, removes, sc.Err()
}

// postMutation sends one batch and prints the server's summary. A 200 is a
// synchronous apply; a 202 is a durable-ingest acknowledgement (the batch is
// in the WAL, the batcher applies it shortly). A 429 is backpressure, in two
// flavors: reject mode carries Retry-After (wait and resend — the batch is
// not logged until a 2xx comes back, so the retry cannot double-apply), drop
// mode carries "dropped": true (the event is discarded; report and move on).
func postMutation(ctx context.Context, url string, batch mutateRequest) error {
	body, err := json.Marshal(batch)
	if err != nil {
		return err
	}
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		payload, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if err != nil {
			return err
		}
		switch resp.StatusCode {
		case http.StatusTooManyRequests:
			var shed struct {
				Dropped bool `json:"dropped"`
			}
			if json.Unmarshal(payload, &shed) == nil && shed.Dropped {
				fmt.Printf("dropped +%d -%d edges (ingest queue full, drop mode)\n",
					len(batch.Add), len(batch.Remove))
				return nil
			}
			delay := time.Second
			if s := resp.Header.Get("Retry-After"); s != "" {
				if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
					delay = time.Duration(secs) * time.Second
				}
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(delay):
			}
			continue
		case http.StatusAccepted:
			var ack struct {
				Seq        uint64  `json:"seq"`
				QueueDepth float64 `json:"queue_depth"`
			}
			if err := json.Unmarshal(payload, &ack); err != nil {
				return fmt.Errorf("mutate: bad server response: %w", err)
			}
			fmt.Printf("queued +%d -%d edges durably (seq %d, queue depth %.0f)\n",
				len(batch.Add), len(batch.Remove), ack.Seq, ack.QueueDepth)
			return nil
		case http.StatusOK:
		default:
			return fmt.Errorf("mutate: server answered %s: %s", resp.Status, strings.TrimSpace(string(payload)))
		}
		var summary struct {
			Added        int     `json:"added"`
			Removed      int     `json:"removed"`
			Edges        int64   `json:"edges"`
			Compacted    bool    `json:"compacted"`
			Incremental  bool    `json:"incremental"`
			ReindexIters int     `json:"reindex_iters"`
			ElapsedMS    float64 `json:"elapsed_ms"`
		}
		if err := json.Unmarshal(payload, &summary); err != nil {
			return fmt.Errorf("mutate: bad server response: %w", err)
		}
		mode := "incremental"
		if !summary.Incremental {
			mode = "full rebuild"
		}
		if summary.Compacted {
			mode += ", compacted"
		}
		fmt.Printf("applied +%d -%d edges (now %d) in %.1fms — reindex: %s, %d iters\n",
			summary.Added, summary.Removed, summary.Edges, summary.ElapsedMS, mode, summary.ReindexIters)
		return nil
	}
}

// watchMutations follows path from the beginning, posting every new run of
// complete lines as one batch, until ctx is cancelled (^C from cmdMutate).
func watchMutations(ctx context.Context, url, path string, interval time.Duration) error {
	var offset int64
	var pending []byte
	for {
		grew, err := func() (bool, error) {
			f, err := os.Open(path)
			if os.IsNotExist(err) {
				// The file is mid-rotation (renamed away, not yet
				// recreated) or not written yet: keep following.
				offset = 0
				pending = nil
				return false, nil
			}
			if err != nil {
				return false, err
			}
			defer f.Close()
			st, err := f.Stat()
			if err != nil {
				return false, err
			}
			if st.Size() < offset {
				// The file was truncated/rotated: start over.
				offset = 0
				pending = nil
			}
			if st.Size() == offset {
				return false, nil
			}
			if _, err := f.Seek(offset, io.SeekStart); err != nil {
				return false, err
			}
			chunk, err := io.ReadAll(f)
			if err != nil {
				return false, err
			}
			offset += int64(len(chunk))
			pending = append(pending, chunk...)
			return true, nil
		}()
		if err != nil {
			return err
		}
		if grew {
			// Only complete lines form the batch; a partial trailing line
			// waits for its newline.
			if cut := bytes.LastIndexByte(pending, '\n'); cut >= 0 {
				ready := pending[:cut+1]
				pending = append([]byte(nil), pending[cut+1:]...)
				adds, removes, err := parseMutations(bufio.NewScanner(bytes.NewReader(ready)))
				if err != nil {
					return fmt.Errorf("mutate: %s: %w", path, err)
				}
				if len(adds) > 0 || len(removes) > 0 {
					if err := postMutation(ctx, url, mutateRequest{Add: adds, Remove: removes}); err != nil {
						return err
					}
				}
			}
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(interval):
		}
	}
}
