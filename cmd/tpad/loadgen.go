package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tpa/internal/loadgen"
)

// cmdLoadgen drives an open-loop load run against a running tpad server and
// prints (or writes) the report. Exit status doubles as the CI SLO gate:
// non-zero when -max-error-rate or -max-p99-ms is violated, so a pipeline
// step is just "tpad loadgen ... || exit 1".
func cmdLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	url := fs.String("url", "http://localhost:8080", "base URL of the tpad server")
	graph := fs.String("graph", "", "named graph to target (empty = default graph)")
	qps := fs.Float64("qps", 100, "steady-state arrival rate")
	ramp := fs.Duration("ramp", 0, "linear ramp 0 → qps over this leading portion of the run")
	duration := fs.Duration("duration", 30*time.Second, "total run length including the ramp")
	zipfS := fs.Float64("zipf-s", 1.0, "Zipf seed-popularity exponent (0 = uniform)")
	seeds := fs.Int("seeds", 0, "seed id space [0,n); 0 = detect from the server's /stats")
	k := fs.Int("k", 10, "top-k per query")
	deadlineMS := fs.Int("deadline-ms", 0, "X-TPA-Deadline-Ms to stamp on every request (0 = none)")
	maxInflight := fs.Int("max-inflight", 4096, "client-side cap on outstanding requests (arrivals beyond it are dropped, not delayed)")
	jsonOut := fs.String("json", "", "write the report JSON to this file ('-' = stdout)")
	maxErrRate := fs.Float64("max-error-rate", -1, "SLO gate: exit non-zero if error_rate exceeds this (-1 disables)")
	maxP99MS := fs.Float64("max-p99-ms", -1, "SLO gate: exit non-zero if p99 of answered requests exceeds this (-1 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := loadgen.Config{
		URL:         *url,
		Graph:       *graph,
		QPS:         *qps,
		Ramp:        *ramp,
		Duration:    *duration,
		ZipfS:       *zipfS,
		Seeds:       *seeds,
		K:           *k,
		DeadlineMs:  *deadlineMS,
		MaxInFlight: *maxInflight,
		Seed:        1,
	}
	if cfg.Seeds == 0 {
		n, err := loadgen.DetectSeeds(http.DefaultClient, *url, *graph)
		if err != nil {
			return fmt.Errorf("loadgen: %w (is the server up? or pass -seeds)", err)
		}
		cfg.Seeds = n
		fmt.Fprintf(os.Stderr, "loadgen: detected %d seeds from %s\n", n, *url)
	}
	runner, err := loadgen.New(cfg)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "loadgen: %v at %.0f QPS (ramp %v) against %s\n", *duration, *qps, *ramp, *url)
	rep, err := runner.Run(ctx)
	if err != nil {
		return err
	}

	switch *jsonOut {
	case "":
	case "-":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	default:
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("loadgen: writing report: %w", err)
		}
	}

	fmt.Fprintf(os.Stderr,
		"loadgen: %d requests in %.1fs — %.0f/%.0f QPS achieved, %d ok, %d shed (%.2f%%), %d errors (%.2f%%), %d dropped, %d partial\n",
		rep.Requests, rep.DurationSec, rep.AchievedQPS, rep.TargetQPS,
		rep.OK, rep.Shed, rep.ShedRate*100, rep.Errors, rep.ErrorRate*100, rep.Dropped, rep.Partial)
	fmt.Fprintf(os.Stderr,
		"loadgen: latency(ok) p50 %.2fms p95 %.2fms p99 %.2fms p999 %.2fms max %.2fms\n",
		rep.LatencyOK.P50, rep.LatencyOK.P95, rep.LatencyOK.P99, rep.LatencyOK.P999, rep.LatencyOK.Max)

	// SLO gate.
	var violations []string
	if *maxErrRate >= 0 && rep.ErrorRate > *maxErrRate {
		violations = append(violations, fmt.Sprintf("error_rate %.4f > %.4f", rep.ErrorRate, *maxErrRate))
	}
	if *maxP99MS >= 0 && rep.LatencyOK.P99 > *maxP99MS {
		violations = append(violations, fmt.Sprintf("p99 %.2fms > %.2fms", rep.LatencyOK.P99, *maxP99MS))
	}
	if len(violations) > 0 {
		return fmt.Errorf("SLO violated: %v", violations)
	}
	return nil
}
