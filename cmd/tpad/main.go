// Command tpad serves TPA queries over HTTP:
//
//	tpad -graph edges.tsv [-index prebuilt.idx] [-addr :8080] [-s 5 -t 10]
//
// It loads (or computes) the TPA index for the graph, then serves:
//
//	GET  /topk?seed=42&k=10
//	GET  /score?seed=42&node=7
//	POST /queryset  {"seeds":[1,2,3],"k":10}
//	GET  /stats
//	GET  /healthz
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"tpa"
	"tpa/internal/server"
)

func main() {
	graphPath := flag.String("graph", "", "edge-list file (required)")
	indexPath := flag.String("index", "", "optional prebuilt index (from `tpa preprocess`)")
	addr := flag.String("addr", ":8080", "listen address")
	o := tpa.Defaults()
	flag.Float64Var(&o.C, "c", o.C, "restart probability")
	flag.Float64Var(&o.Eps, "eps", o.Eps, "convergence tolerance")
	flag.IntVar(&o.S, "s", o.S, "neighbor-part start iteration S")
	flag.IntVar(&o.T, "t", o.T, "stranger-part start iteration T")
	flag.Parse()

	if *graphPath == "" {
		fmt.Fprintln(os.Stderr, "tpad: -graph is required")
		os.Exit(2)
	}
	g, err := tpa.LoadGraph(*graphPath)
	if err != nil {
		log.Fatalf("tpad: loading graph: %v", err)
	}
	var eng *tpa.Engine
	if *indexPath != "" {
		f, err := os.Open(*indexPath)
		if err != nil {
			log.Fatalf("tpad: opening index: %v", err)
		}
		eng, err = tpa.LoadIndex(f, g)
		f.Close()
		if err != nil {
			log.Fatalf("tpad: loading index: %v", err)
		}
	} else {
		eng, err = tpa.New(g, o)
		if err != nil {
			log.Fatalf("tpad: preprocessing: %v", err)
		}
	}
	s, t := eng.Params()
	log.Printf("tpad: serving %d nodes / %d edges (S=%d T=%d, index %d bytes) on %s",
		g.NumNodes(), g.NumEdges(), s, t, eng.IndexBytes(), *addr)
	h := server.New(eng, server.Info{Nodes: g.NumNodes(), Edges: g.NumEdges(), Name: *graphPath})
	log.Fatal(http.ListenAndServe(*addr, h))
}
