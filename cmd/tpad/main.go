// Command tpad builds TPA snapshots and serves queries over HTTP:
//
//	tpad build -graph edges.tsv [-o edges.tpas] [-s 5 -t 10 -c 0.15] [-workers 8]
//	           [-order degree|bfs|hubspoke] [-precision 32] [-tile N]
//	tpad serve -graphs snapshots/ [-addr :8080] [-cache 4096] [-max-inflight 256]
//	tpad serve -graph edges.tsv [-index prebuilt.idx] [...]
//	tpad mutate -graph name [-add u,v]... [-remove u,v]... [-file f | -watch f]
//	tpad loadgen -url http://host:8080 [-qps 100 -duration 30s -zipf-s 1.0]
//	tpad arena [-gen sbm:10000] [-methods tpa,exact,fora,...] [-json out.json]
//	tpad -graph edges.tsv [...]                  (legacy alias for "serve")
//
// build runs preprocessing once and writes a combined graph+index snapshot
// (.tpas); serve -graphs loads every snapshot and edge list in a directory
// as a named graph, so one process answers /graphs/{name}/… for all of
// them — snapshots cold-start with two sequential reads, no edge-list
// parsing and no re-preprocessing. Graphs registered from files are
// hot-reloadable via POST /graphs/{name}/reload, which rebuilds from the
// file and atomically swaps the engine with zero dropped queries.
//
// -workers shards the preprocessing matvec and sizes the /batch worker pool;
// -cache bounds each graph's LRU top-k cache partition; -max-inflight sheds
// load with 503 beyond that many concurrent queries. SIGINT/SIGTERM drain
// in-flight requests before exiting. See docs/API.md for the endpoint
// reference and the snapshot format spec.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"tpa"
	"tpa/internal/gen"
	"tpa/internal/ingest"
	"tpa/internal/server"
)

func main() {
	args := os.Args[1:]
	var err error
	switch {
	case len(args) > 0 && args[0] == "build":
		err = cmdBuild(args[1:])
	case len(args) > 0 && args[0] == "serve":
		err = cmdServe(args[1:])
	case len(args) > 0 && args[0] == "mutate":
		err = cmdMutate(args[1:])
	case len(args) > 0 && args[0] == "loadgen":
		err = cmdLoadgen(args[1:])
	case len(args) > 0 && args[0] == "arena":
		err = cmdArena(args[1:])
	case len(args) > 0 && args[0] == "graphgen":
		err = cmdGraphgen(args[1:])
	case len(args) > 0 && (args[0] == "help" || args[0] == "-h" || args[0] == "--help"):
		usage()
		return
	default:
		// Legacy single-graph invocation: tpad -graph edges.tsv ...
		err = cmdServe(args)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tpad: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  tpad build -graph <edges.tsv> [-o <out.tpas>] [-s 5] [-t 10] [-c 0.15] [-eps 1e-9] [-workers N]
             [-order natural|degree|bfs|hubspoke] [-precision 64|32] [-tile N]
             [-shards N] [-mmap]
  tpad graphgen -out <edges.tsv[.gz]> [-nodes N] [-communities K] [-avgdeg D] [-pin P]
             [-seed S] [-uniform] [-stream]
  tpad serve -graphs <dir>      [-addr :8080] [serving flags]
  tpad serve -graph <edges.tsv> [-index <in.idx>] [-addr :8080] [serving flags]
  tpad mutate -graph <name>     [-server URL] [-add u,v]... [-remove u,v]... [-file f]
  tpad mutate -graph <name>     [-server URL] -watch <file> [-interval 1s]
  tpad loadgen -url <URL>       [-qps 100] [-ramp 0s] [-duration 30s] [-zipf-s 1.0]
                                [-seeds 0] [-k 10] [-deadline-ms 0] [-json out.json]
                                [-max-error-rate R] [-max-p99-ms MS]
  tpad arena [-gen sbm:10000,rmat:5000] [-graphs edges.tsv,...] [-methods tpa,exact,...]
             [-workloads uniform,hub,tail] [-queries 10] [-k 20] [-c 0.15] [-eps 1e-9]
             [-seed 1] [-json out.json] [-quiet]

serving flags: -workers N -cache N -max-inflight N -max-batch N -default-deadline D
               -c -eps -s -t -order -precision -tile
"tpad -graph ..." without a subcommand is the legacy alias for "tpad serve -graph ...".
build -mmap writes a memory-mappable .tpam snapshot (zero-copy cold start;
serve auto-detects it); -shards N builds a scatter-gather engine over N
community-aligned shards. graphgen writes a synthetic SBM edge list;
-stream generates row-at-a-time in constant memory for very large graphs.
mutate posts edge batches to a running server's POST /graphs/{name}/edges;
-watch follows a growing mutation file ("+ u v" / "- u v" lines) until ^C.
loadgen drives an open-loop Zipf workload against a running server and exits
non-zero when -max-error-rate or -max-p99-ms is violated (the CI SLO gate).`)
}

func tpaOpts(fs *flag.FlagSet) *tpa.Options {
	o := tpa.Defaults()
	fs.Float64Var(&o.C, "c", o.C, "restart probability")
	fs.Float64Var(&o.Eps, "eps", o.Eps, "convergence tolerance")
	fs.IntVar(&o.S, "s", o.S, "neighbor-part start iteration S")
	fs.IntVar(&o.T, "t", o.T, "stranger-part start iteration T")
	fs.StringVar(&o.Order, "order", "", "build-time node ordering: "+strings.Join(tpa.Orders(), "|")+" (node ids stay external)")
	fs.Var(precFlag{&o.Precision}, "precision", "index storage precision: 64 (default) or 32 (half the index, ~1e-4 accuracy cost)")
	fs.IntVar(&o.Tile, "tile", 0, "cache-tiled kernel source-tile width in nodes (0 = untiled, -1 = default tile)")
	return &o
}

// precFlag adapts tpa.Precision to the flag package, so "-precision 32"
// fails at parse time instead of deep inside engine construction.
type precFlag struct{ p *tpa.Precision }

func (f precFlag) String() string {
	if f.p == nil {
		return ""
	}
	return f.p.String()
}

func (f precFlag) Set(s string) error {
	p, err := tpa.ParsePrecision(s)
	if err != nil {
		return err
	}
	*f.p = p
	return nil
}

// cmdBuild runs the one-off preprocessing phase and writes the combined
// graph+index snapshot, the artifact "tpad serve" cold-starts from.
func cmdBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	graphPath := fs.String("graph", "", "edge-list file (required, .gz supported)")
	out := fs.String("o", "", "output snapshot file (default: graph path with .tpas extension, .tpam with -mmap)")
	workers := fs.Int("workers", 0, "goroutines for the preprocessing matvec (0 = all CPUs)")
	shards := fs.Int("shards", 0, "partition into N community-aligned shards and scatter-gather queries across them (0/1 = unsharded)")
	mmapOut := fs.Bool("mmap", false, "write a memory-mappable .tpam snapshot (zero-copy cold start) instead of .tpas")
	o := tpaOpts(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *graphPath == "" {
		return fmt.Errorf("build: -graph is required")
	}
	o.Workers = *workers
	dest := *out
	if dest == "" {
		name, _ := stem(*graphPath)
		if *mmapOut {
			dest = name + ".tpam"
		} else {
			dest = name + ".tpas"
		}
	}
	start := time.Now()
	g, err := tpa.LoadGraph(*graphPath)
	if err != nil {
		return fmt.Errorf("build: loading graph: %w", err)
	}
	loadT := time.Since(start)
	start = time.Now()
	var eng *tpa.Engine
	if *shards > 1 {
		eng, err = tpa.NewSharded(g, *shards, *o)
	} else {
		eng, err = tpa.New(g, *o)
	}
	if err != nil {
		return fmt.Errorf("build: preprocessing: %w", err)
	}
	prepT := time.Since(start)
	if *mmapOut {
		err = eng.SaveSnapshotMmap(dest)
	} else {
		err = eng.SaveSnapshotFile(dest)
	}
	if err != nil {
		return fmt.Errorf("build: writing snapshot: %w", err)
	}
	st, err := os.Stat(dest)
	if err != nil {
		return err
	}
	s, t := eng.Params()
	extras := ""
	if eng.Order() != "" && eng.Order() != "natural" {
		extras += " order=" + eng.Order()
	}
	if eng.Precision() == tpa.Float32 {
		extras += " precision=float32"
	}
	if n := eng.NumShards(); n > 1 {
		extras += fmt.Sprintf(" shards=%d", n)
	}
	fmt.Printf("built %s: %d nodes / %d edges (S=%d T=%d%s), %d bytes\n",
		dest, g.NumNodes(), g.NumEdges(), s, t, extras, st.Size())
	fmt.Printf("  parse %v, preprocess %v — serve cold-starts skip both\n",
		loadT.Round(time.Millisecond), prepT.Round(time.Millisecond))
	return nil
}

// cmdGraphgen writes a synthetic stochastic-block-model edge list — the
// benchmark-input generator. With -stream the rows are generated and
// written one source node at a time in constant memory, so inputs with
// hundreds of millions of edges need no more RAM than the row buffer;
// without it the graph is built in memory first (identical edges either
// way — the streaming generator replays the builder's sampling sequence).
func cmdGraphgen(args []string) error {
	fs := flag.NewFlagSet("graphgen", flag.ExitOnError)
	out := fs.String("out", "", "output edge-list file (required; .gz compresses)")
	nodes := fs.Int("nodes", 100_000, "node count")
	communities := fs.Int("communities", 16, "community count")
	avgdeg := fs.Float64("avgdeg", 8, "expected out-degree per node")
	pin := fs.Float64("pin", 0.9, "probability an edge stays inside its community")
	seed := fs.Int64("seed", 1, "generator seed (same seed = same graph)")
	uniform := fs.Bool("uniform", false, "uniform in-community targets (no Zipf in-degree skew)")
	streamGen := fs.Bool("stream", false, "generate row-at-a-time in constant memory (for very large graphs)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("graphgen: -out is required")
	}
	cfg := gen.SBMConfig{Nodes: *nodes, Communities: *communities,
		AvgOutDeg: *avgdeg, PIn: *pin, Seed: *seed, Uniform: *uniform}
	start := time.Now()
	if *streamGen {
		if err := gen.StreamSBMEdgeListFile(*out, cfg); err != nil {
			return fmt.Errorf("graphgen: %w", err)
		}
	} else {
		g := gen.SBM(cfg)
		if err := tpa.SaveGraph(*out, g); err != nil {
			return fmt.Errorf("graphgen: %w", err)
		}
	}
	st, err := os.Stat(*out)
	if err != nil {
		return err
	}
	fmt.Printf("generated %s: %d nodes, ~%.0f edges/node, %d bytes in %v\n",
		*out, *nodes, *avgdeg, st.Size(), time.Since(start).Round(time.Millisecond))
	return nil
}

// stem strips an optional ".gz" and then the extension: "edges.tsv.gz" →
// "edges". It is the one rule mapping file names to graph names, shared by
// the `build` output default and the `serve -graphs` registry, so the two
// always agree on which snapshot corresponds to which edge list.
func stem(path string) (name, ext string) {
	base := strings.TrimSuffix(path, ".gz")
	ext = filepath.Ext(base)
	return strings.TrimSuffix(base, ext), ext
}

// snapshotName maps an edge-list path to its default snapshot path:
// edges.tsv → edges.tpas, edges.tsv.gz → edges.tpas.
func snapshotName(graphPath string) string {
	name, _ := stem(graphPath)
	return name + ".tpas"
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	graphsDir := fs.String("graphs", "", "directory of snapshots (.tpas) and edge lists to serve as named graphs")
	graphPath := fs.String("graph", "", "single edge-list file")
	indexPath := fs.String("index", "", "optional prebuilt index (from `tpa preprocess`) for -graph")
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "goroutines for preprocessing and /batch fan-out (0 = all CPUs)")
	cacheSize := fs.Int("cache", 4096, "top-k LRU cache entries per graph (0 disables caching)")
	maxInflight := fs.Int("max-inflight", 256, "concurrent query requests before shedding 503s (0 = unlimited)")
	maxBatch := fs.Int("max-batch", 4096, "max seeds per /batch or /queryset request (0 = unlimited)")
	defaultDeadline := fs.Duration("default-deadline", 0, "per-query budget when no X-TPA-Deadline-Ms header is sent; expired queries return partial answers (0 = none)")
	walRoot := fs.String("wal", "", "directory for durable ingestion: per-graph write-ahead logs and compacted snapshots; replayed on boot")
	fsyncMode := fs.String("fsync", "batch", "WAL durability: always (fsync per batch), batch (fsync on a short timer), off")
	ingestQueue := fs.Int("ingest-queue", 1024, "bounded ingest queue capacity in edge events")
	ingestMode := fs.String("ingest-mode", "block", "backpressure when the ingest queue is full: block, drop, or reject (429)")
	batchEdges := fs.Int("ingest-batch-edges", 4096, "max edges coalesced into one apply batch")
	batchAge := fs.Duration("ingest-batch-age", 25*time.Millisecond, "max time an admitted edge event waits before its batch is applied")
	compactStaleness := fs.Float64("compact-staleness", 0, "auto-compact when the mutation overlay exceeds this fraction of the base graph (0 = off)")
	compactWALBytes := fs.Int64("compact-wal-bytes", 128<<20, "auto-compact (and truncate the WAL) when live WAL bytes exceed this (0 = off)")
	o := tpaOpts(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	o.Workers = *workers
	if (*graphsDir == "") == (*graphPath == "") {
		return fmt.Errorf("serve: exactly one of -graphs or -graph is required")
	}
	if *indexPath != "" && *graphsDir != "" {
		return fmt.Errorf("serve: -index only applies to a single -graph edge list, not -graphs")
	}
	if *indexPath != "" && (strings.HasSuffix(*graphPath, ".tpas") || strings.HasSuffix(*graphPath, ".tpam")) {
		return fmt.Errorf("serve: -index cannot be combined with a snapshot (it already embeds its index)")
	}
	var ing *ingestSetup
	if *walRoot != "" {
		fsync, err := ingest.ParseFsyncPolicy(*fsyncMode)
		if err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		mode, err := ingest.ParseMode(*ingestMode)
		if err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		ing = &ingestSetup{
			root: *walRoot,
			wal:  ingest.WALOptions{Fsync: fsync},
			queue: ingest.Options{
				QueueSize:        *ingestQueue,
				MaxBatchEdges:    *batchEdges,
				MaxBatchAge:      *batchAge,
				Mode:             mode,
				CompactStaleness: *compactStaleness,
				CompactWALBytes:  *compactWALBytes,
			},
		}
	}

	h := server.NewRegistry(server.Options{
		Workers:         *workers,
		CacheSize:       *cacheSize,
		MaxInFlight:     *maxInflight,
		MaxBatch:        *maxBatch,
		DefaultDeadline: *defaultDeadline,
	})
	if *graphsDir != "" {
		if err := registerDir(h, *graphsDir, *o, ing); err != nil {
			return err
		}
	} else {
		if err := h.RegisterLoader("default", ing.wrap("default", singleLoader(*graphPath, *indexPath, *o))); err != nil {
			return err
		}
		if err := h.SetDefault("default"); err != nil {
			return err
		}
	}
	names := h.GraphNames()
	if len(names) == 0 {
		return fmt.Errorf("serve: no graphs registered from %s", *graphsDir)
	}
	if err := ing.enable(h, names); err != nil {
		return err
	}
	log.Printf("tpad: serving %d graph(s) on %s: %s", len(names), *addr, strings.Join(names, ", "))

	srv := &http.Server{Addr: *addr, Handler: h}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case err := <-errCh:
		h.Close()
		return fmt.Errorf("serving: %w", err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("tpad: signal received, draining in-flight requests")
	sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		log.Printf("tpad: shutdown: %v", err)
	}
	// Close after the HTTP drain: the ingest pipelines flush their queues,
	// fsync and close the WALs, so a clean exit leaves nothing to replay.
	if err := h.Close(); err != nil {
		log.Printf("tpad: closing ingest pipelines: %v", err)
	}
	log.Printf("tpad: bye")
	return nil
}

// ingestSetup carries the -wal/-fsync/-ingest-*/-compact-* serve flags. A
// nil setup (no -wal) leaves loaders and registration untouched.
type ingestSetup struct {
	root  string
	wal   ingest.WALOptions
	queue ingest.Options
}

// walDir is the per-graph WAL segment directory under the -wal root.
func (s *ingestSetup) walDir(name string) string { return filepath.Join(s.root, name) }

// snapPath is the per-graph compacted snapshot auto-compaction rewrites;
// boot prefers it over the originally registered source.
func (s *ingestSetup) snapPath(name string) string { return filepath.Join(s.root, name+".tpas") }

// wrap makes a loader durable: prefer the compacted snapshot, then replay
// the graph's WAL on top, so a restarted server resumes exactly where the
// log ends — including after kill -9 mid-ingest.
func (s *ingestSetup) wrap(name string, base server.Loader) server.Loader {
	if s == nil {
		return base
	}
	walDir, snapPath := s.walDir(name), s.snapPath(name)
	return func() (server.Engine, server.Info, error) {
		var eng *tpa.Engine
		var info server.Info
		if _, err := os.Stat(snapPath); err == nil {
			eng, err = tpa.LoadSnapshotFile(snapPath)
			if err != nil {
				return nil, server.Info{}, fmt.Errorf("loading compacted snapshot %s: %w", snapPath, err)
			}
			info = engineInfo(eng, snapPath)
			log.Printf("tpad: %s: cold-started from compacted snapshot %s", name, snapPath)
		} else {
			bEng, bInfo, err := base()
			if err != nil {
				return nil, server.Info{}, err
			}
			te, ok := bEng.(*tpa.Engine)
			if !ok {
				return nil, server.Info{}, fmt.Errorf("graph %q is served by a %T, which does not support durable ingestion", name, bEng)
			}
			eng, info = te, bInfo
		}
		replayed, stats, err := eng.ReplayWAL(walDir)
		if err != nil {
			return nil, server.Info{}, err
		}
		if stats.Records > 0 {
			log.Printf("tpad: %s: replayed %d WAL record(s) across %d segment(s) (%d edges in %d batches)",
				name, stats.Records, stats.Segments, stats.Edges, stats.Applies)
		}
		if stats.Truncated {
			log.Printf("tpad: %s: WAL tail torn (%v); resuming from the last durable record", name, stats.TailError)
		}
		info.Nodes, info.Edges = replayed.NumNodes(), replayed.NumEdges()
		return replayed, info, nil
	}
}

// enable turns on the durable write pipeline for every registered graph.
func (s *ingestSetup) enable(h *server.Handler, names []string) error {
	if s == nil {
		return nil
	}
	for _, name := range names {
		cfg := server.IngestConfig{
			Dir:          s.walDir(name),
			WAL:          s.wal,
			Queue:        s.queue,
			SnapshotPath: s.snapPath(name),
		}
		if err := h.EnableIngest(name, cfg); err != nil {
			return fmt.Errorf("serve: enabling ingest for %q: %w", name, err)
		}
	}
	return nil
}

// singleLoader rebuilds the engine for the legacy single-graph mode: a
// snapshot if the path is one, otherwise edge list + optional prebuilt
// index, otherwise edge list + preprocessing.
func singleLoader(graphPath, indexPath string, o tpa.Options) server.Loader {
	if strings.HasSuffix(graphPath, ".tpas") || strings.HasSuffix(graphPath, ".tpam") {
		return snapshotLoader(graphPath)
	}
	return func() (server.Engine, server.Info, error) {
		g, err := tpa.LoadGraph(graphPath)
		if err != nil {
			return nil, server.Info{}, err
		}
		var eng *tpa.Engine
		if indexPath != "" {
			f, err := os.Open(indexPath)
			if err != nil {
				return nil, server.Info{}, err
			}
			eng, err = tpa.LoadIndex(f, g)
			f.Close()
			if err != nil {
				return nil, server.Info{}, err
			}
		} else {
			eng, err = tpa.New(g, o)
			if err != nil {
				return nil, server.Info{}, err
			}
		}
		return eng, engineInfo(eng, graphPath), nil
	}
}

// snapshotLoader cold-starts from a combined snapshot: no edge-list parse,
// no preprocessing.
func snapshotLoader(path string) server.Loader {
	return func() (server.Engine, server.Info, error) {
		start := time.Now()
		eng, err := tpa.LoadSnapshotFile(path)
		if err != nil {
			return nil, server.Info{}, err
		}
		log.Printf("tpad: snapshot %s loaded in %v", path, time.Since(start).Round(time.Millisecond))
		return eng, engineInfo(eng, path), nil
	}
}

// edgeListLoader parses and preprocesses an edge list; used for directory
// entries that are not snapshots.
func edgeListLoader(path string, o tpa.Options) server.Loader {
	return func() (server.Engine, server.Info, error) {
		g, err := tpa.LoadGraph(path)
		if err != nil {
			return nil, server.Info{}, err
		}
		eng, err := tpa.New(g, o)
		if err != nil {
			return nil, server.Info{}, err
		}
		return eng, engineInfo(eng, path), nil
	}
}

func engineInfo(eng *tpa.Engine, path string) server.Info {
	// NumNodes/NumEdges, not Graph(): an engine carrying an uncompacted
	// mutation overlay (e.g. right after a WAL replay) has no base CSR.
	return server.Info{Nodes: eng.NumNodes(), Edges: eng.NumEdges(), Name: path}
}

// registerDir scans dir and registers every snapshot (.tpas/.tpam) and edge
// list (.tsv/.txt/.edges, optionally .gz) as a named, reloadable graph. The
// graph name is the file name without extensions; when several formats
// share a stem (the `tpad build` default layout), the memory-mapped
// snapshot wins over the heap snapshot, which wins over the edge list.
func registerDir(h *server.Handler, dir string, o tpa.Options, ing *ingestSetup) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("serve: reading -graphs dir: %w", err)
	}
	// Snapshot precedence: .tpam (memory-mapped) over .tpas, either over an
	// edge list with the same stem — the `tpad build` default layout leaves
	// all of them side by side.
	snapExt := make(map[string]string)
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		switch {
		case strings.HasSuffix(e.Name(), ".tpam"):
			snapExt[strings.TrimSuffix(e.Name(), ".tpam")] = ".tpam"
		case strings.HasSuffix(e.Name(), ".tpas"):
			name := strings.TrimSuffix(e.Name(), ".tpas")
			if snapExt[name] == "" {
				snapExt[name] = ".tpas"
			}
		}
	}
	registered := 0
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		path := filepath.Join(dir, e.Name())
		name, loader := classify(path, e.Name(), o)
		if loader == nil {
			continue
		}
		if want := snapExt[name]; want != "" && !strings.HasSuffix(e.Name(), want) {
			log.Printf("tpad: %s shadowed by %s%s, skipping", path, name, want)
			continue
		}
		if err := h.RegisterLoader(name, ing.wrap(name, loader)); err != nil {
			return fmt.Errorf("serve: registering %s: %w", path, err)
		}
		registered++
	}
	if registered == 0 {
		return fmt.Errorf("serve: no snapshots (.tpas/.tpam) or edge lists found in %s", dir)
	}
	return nil
}

// classify maps a directory entry to a graph name and loader; unknown file
// types return a nil loader and are skipped.
func classify(path, base string, o tpa.Options) (string, server.Loader) {
	name, ext := stem(base)
	switch ext {
	case ".tpas", ".tpam":
		if strings.HasSuffix(base, ".gz") {
			return "", nil // snapshots are binary; gzip variants are not supported
		}
		return name, snapshotLoader(path)
	case ".tsv", ".txt", ".edges", ".el":
		return name, edgeListLoader(path, o)
	default:
		return "", nil
	}
}
