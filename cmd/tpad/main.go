// Command tpad serves TPA queries over HTTP:
//
//	tpad -graph edges.tsv [-index prebuilt.idx] [-addr :8080] [-s 5 -t 10]
//	     [-workers 8] [-cache 4096] [-max-inflight 256] [-max-batch 4096]
//
// It loads (or computes) the TPA index for the graph, then serves:
//
//	GET  /topk?seed=42&k=10
//	GET  /score?seed=42&node=7
//	POST /batch     {"seeds":[1,2,3],"k":10}
//	POST /queryset  {"seeds":[1,2,3],"k":10}
//	GET  /stats
//	GET  /healthz
//
// -workers shards the preprocessing matvec and sizes the /batch worker pool;
// -cache bounds the LRU top-k result cache; -max-inflight sheds load with
// 503 beyond that many concurrent queries. SIGINT/SIGTERM drain in-flight
// requests before exiting. See docs/API.md for the endpoint reference.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tpa"
	"tpa/internal/server"
)

func main() {
	graphPath := flag.String("graph", "", "edge-list file (required)")
	indexPath := flag.String("index", "", "optional prebuilt index (from `tpa preprocess`)")
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "goroutines for preprocessing and /batch fan-out (0 = all CPUs)")
	cacheSize := flag.Int("cache", 4096, "top-k LRU cache entries (0 disables caching)")
	maxInflight := flag.Int("max-inflight", 256, "concurrent query requests before shedding 503s (0 = unlimited)")
	maxBatch := flag.Int("max-batch", 4096, "max seeds per /batch or /queryset request (0 = unlimited)")
	o := tpa.Defaults()
	flag.Float64Var(&o.C, "c", o.C, "restart probability")
	flag.Float64Var(&o.Eps, "eps", o.Eps, "convergence tolerance")
	flag.IntVar(&o.S, "s", o.S, "neighbor-part start iteration S")
	flag.IntVar(&o.T, "t", o.T, "stranger-part start iteration T")
	flag.Parse()
	o.Workers = *workers

	if *graphPath == "" {
		fmt.Fprintln(os.Stderr, "tpad: -graph is required")
		os.Exit(2)
	}
	g, err := tpa.LoadGraph(*graphPath)
	if err != nil {
		log.Fatalf("tpad: loading graph: %v", err)
	}
	var eng *tpa.Engine
	if *indexPath != "" {
		f, err := os.Open(*indexPath)
		if err != nil {
			log.Fatalf("tpad: opening index: %v", err)
		}
		eng, err = tpa.LoadIndex(f, g)
		f.Close()
		if err != nil {
			log.Fatalf("tpad: loading index: %v", err)
		}
	} else {
		eng, err = tpa.New(g, o)
		if err != nil {
			log.Fatalf("tpad: preprocessing: %v", err)
		}
	}
	s, t := eng.Params()
	log.Printf("tpad: serving %d nodes / %d edges (S=%d T=%d, index %d bytes) on %s",
		g.NumNodes(), g.NumEdges(), s, t, eng.IndexBytes(), *addr)
	h := server.NewWith(eng,
		server.Info{Nodes: g.NumNodes(), Edges: g.NumEdges(), Name: *graphPath},
		server.Options{
			Workers:     *workers,
			CacheSize:   *cacheSize,
			MaxInFlight: *maxInflight,
			MaxBatch:    *maxBatch,
		})

	srv := &http.Server{Addr: *addr, Handler: h}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case err := <-errCh:
		log.Fatalf("tpad: serving: %v", err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("tpad: signal received, draining in-flight requests")
	sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		log.Printf("tpad: shutdown: %v", err)
	}
	log.Printf("tpad: bye")
}
