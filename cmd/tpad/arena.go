package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"tpa/internal/gen"
	"tpa/internal/graph"
	"tpa/internal/method"
	"tpa/internal/rwr"
)

// cmdArena sweeps the registered methods over one or more graphs and prints
// the Fig 3/4-style comparison table (preprocessing time and memory, query
// time, accuracy against exact RWR per workload). Graphs come from edge
// lists (-graphs) and/or from generators (-gen sbm:10000,rmat:5000); with
// neither, a 2000-node SBM is generated so `tpad arena` works out of the
// box.
func cmdArena(args []string) error {
	fs := flag.NewFlagSet("arena", flag.ExitOnError)
	graphFiles := fs.String("graphs", "", "comma-separated edge-list files to benchmark")
	genSpecs := fs.String("gen", "", "comma-separated generated graphs, kind:nodes with kind sbm|rmat|er|ba")
	methods := fs.String("methods", strings.Join(method.DefaultArenaMethods(), ","),
		"comma-separated method names (see registry)")
	workloads := fs.String("workloads", "uniform,hub,tail", "comma-separated seed workloads")
	queries := fs.Int("queries", 10, "query seeds per workload")
	k := fs.Int("k", 20, "cutoff for recall@k against exact RWR")
	seed := fs.Int64("seed", 1, "workload sampling seed")
	c := fs.Float64("c", 0.15, "restart probability")
	eps := fs.Float64("eps", 1e-9, "convergence tolerance")
	jsonOut := fs.String("json", "", "also write the full report as JSON to this file")
	quiet := fs.Bool("quiet", false, "suppress per-cell progress lines")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var graphs []method.ArenaGraph
	for _, path := range splitList(*graphFiles) {
		g, err := graph.LoadFile(path)
		if err != nil {
			return fmt.Errorf("arena: loading %s: %w", path, err)
		}
		graphs = append(graphs, method.ArenaGraph{
			Name: path, Walk: graph.NewWalk(g, graph.DanglingSelfLoop),
		})
	}
	for _, spec := range splitList(*genSpecs) {
		ag, err := generatedGraph(spec, *seed)
		if err != nil {
			return err
		}
		graphs = append(graphs, ag)
	}
	if len(graphs) == 0 {
		ag, err := generatedGraph("sbm:2000", *seed)
		if err != nil {
			return err
		}
		graphs = append(graphs, ag)
	}

	opts := method.ArenaOptions{
		Methods:   splitList(*methods),
		Workloads: splitList(*workloads),
		Queries:   *queries,
		K:         *k,
		Seed:      *seed,
		Cfg:       rwr.Config{C: *c, Eps: *eps},
	}
	logf := log.Printf
	if *quiet {
		logf = nil
	}
	report, err := method.RunArena(graphs, opts, logf)
	if err != nil {
		return err
	}
	fmt.Print(report.Table())
	if *jsonOut != "" {
		raw, err := report.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, raw, 0o644); err != nil {
			return fmt.Errorf("arena: writing %s: %w", *jsonOut, err)
		}
		log.Printf("arena: wrote %s", *jsonOut)
	}
	// A failed cell is visible in the table, but CI wants a nonzero exit.
	for _, cell := range report.Cells {
		if cell.Err != "" {
			return fmt.Errorf("arena: %d of %d cells failed (first: %s/%s: %s)",
				countFailed(report), len(report.Cells), cell.Graph, cell.Method, cell.Err)
		}
	}
	// Every method ships a declared accuracy bound (Stats().Bound); the
	// arena holds it to that promise end-to-end.
	if v := report.BoundViolations(); len(v) > 0 {
		for _, line := range v {
			fmt.Fprintln(os.Stderr, "bound violation:", line)
		}
		return fmt.Errorf("arena: %d declared-bound violation(s)", len(v))
	}
	return nil
}

func countFailed(r *method.ArenaReport) int {
	n := 0
	for _, c := range r.Cells {
		if c.Err != "" {
			n++
		}
	}
	return n
}

// splitList splits a comma-separated flag value, dropping empty items.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// generatedGraph builds one synthetic arena graph from a kind:nodes spec.
func generatedGraph(spec string, seed int64) (method.ArenaGraph, error) {
	kind, nodesStr, ok := strings.Cut(spec, ":")
	if !ok {
		return method.ArenaGraph{}, fmt.Errorf("arena: -gen %q: want kind:nodes", spec)
	}
	n, err := strconv.Atoi(nodesStr)
	if err != nil || n < 10 {
		return method.ArenaGraph{}, fmt.Errorf("arena: -gen %q: bad node count", spec)
	}
	var g *graph.Graph
	switch kind {
	case "sbm":
		g = gen.SBM(gen.SBMConfig{Nodes: n, Communities: 10, AvgOutDeg: 8, PIn: 0.9, Seed: seed})
	case "rmat":
		g = gen.DefaultRMAT(log2ceil(n), int64(8*n), seed)
	case "er":
		g = gen.ErdosRenyi(n, int64(8*n), seed)
	case "ba":
		g = gen.BarabasiAlbert(n, 8, seed)
	default:
		return method.ArenaGraph{}, fmt.Errorf("arena: -gen %q: unknown kind (want sbm|rmat|er|ba)", spec)
	}
	return method.ArenaGraph{
		Name: fmt.Sprintf("%s-%d", kind, g.NumNodes()),
		Walk: graph.NewWalk(g, graph.DanglingSelfLoop),
	}, nil
}

func log2ceil(n int) int {
	s := 0
	for 1<<s < n {
		s++
	}
	return s
}
