package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"tpa"
	"tpa/internal/ingest"
	"tpa/internal/server"
)

// End-to-end coverage for `tpad mutate -watch`: edge-event lines appended
// to a followed file must reach the server (through the durable ingest
// path) and advance the graph's mutation counters.
func TestWatchMutationsEndToEnd(t *testing.T) {
	g := tpa.RandomCommunityGraph(100, 800, 4, 11)
	eng, err := tpa.New(g, tpa.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	h := server.NewRegistry(server.DefaultOptions())
	if err := h.Register("web", eng, server.Info{Nodes: 100, Edges: 800, Name: "web"}); err != nil {
		t.Fatal(err)
	}
	if err := h.EnableIngest("web", server.IngestConfig{
		Dir:   t.TempDir(),
		WAL:   ingest.WALOptions{Fsync: ingest.FsyncOff},
		Queue: ingest.Options{MaxBatchAge: time.Millisecond},
	}); err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	srv := httptest.NewServer(h)
	defer srv.Close()

	path := filepath.Join(t.TempDir(), "live.txt")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- watchMutations(ctx, srv.URL+"/graphs/web/edges", path, 2*time.Millisecond)
	}()

	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// Two complete events, then a partial line that must wait for its
	// newline, then its completion plus one more event.
	if _, err := f.WriteString("+ 1 2\n- 3 4\n"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	if _, err := f.WriteString("5 6"); err != nil { // no newline yet
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	if _, err := f.WriteString("\n+ 7 8\n"); err != nil {
		t.Fatal(err)
	}

	// 4 edge events total; poll the server until the batcher applied them
	// all and the mutation counter moved.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/graphs/web/stats")
		if err != nil {
			t.Fatal(err)
		}
		var stats struct {
			Mutations float64 `json:"mutations"`
			Ingest    struct {
				AppliedEdges float64 `json:"applied_edges"`
			} `json:"ingest"`
		}
		err = json.NewDecoder(resp.Body).Decode(&stats)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if stats.Ingest.AppliedEdges >= 4 && stats.Mutations >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("watched mutations never applied: %+v", stats)
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	if err := <-done; err != nil && err != context.Canceled {
		t.Fatalf("watchMutations: %v", err)
	}
}
