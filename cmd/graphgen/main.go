// Command graphgen generates synthetic graphs, either by model or as one of
// the named dataset analogues of Table II:
//
//	graphgen -model sbm -nodes 10000 -edges 120000 -communities 20 -out g.tsv
//	graphgen -model er|rmat|ba|community ...
//	graphgen -dataset Slashdot -out slashdot.tsv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tpa/internal/datasets"
	"tpa/internal/gen"
	"tpa/internal/graph"
)

func main() {
	model := flag.String("model", "community", "generator: er, rmat, ba, sbm, community")
	dataset := flag.String("dataset", "", "generate a named Table II analogue instead (e.g. Slashdot)")
	nodes := flag.Int("nodes", 10000, "node count (er/ba/sbm/community)")
	edges := flag.Int64("edges", 100000, "edge count target")
	scale := flag.Int("scale", 14, "log2 node count (rmat)")
	communities := flag.Int("communities", 16, "community count (sbm/community)")
	pin := flag.Float64("pin", 0.9, "intra-community probability (sbm)")
	k := flag.Int("k", 5, "edges per new node (ba)")
	seed := flag.Int64("seed", 1, "PRNG seed")
	out := flag.String("out", "", "output edge-list path (required; .gz supported)")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "graphgen: -out is required")
		os.Exit(2)
	}
	var g *graph.Graph
	var err error
	if *dataset != "" {
		var d datasets.Dataset
		d, err = datasets.Get(*dataset)
		if err == nil {
			g = d.Generate()
		}
	} else {
		switch strings.ToLower(*model) {
		case "er":
			g = gen.ErdosRenyi(*nodes, *edges, *seed)
		case "rmat":
			g = gen.DefaultRMAT(*scale, *edges, *seed)
		case "ba":
			g = gen.BarabasiAlbert(*nodes, *k, *seed)
		case "sbm":
			g = gen.SBM(gen.SBMConfig{Nodes: *nodes, Communities: *communities,
				AvgOutDeg: float64(*edges) / float64(*nodes), PIn: *pin, Seed: *seed})
		case "community":
			g = gen.CommunityRMAT(*nodes, *edges, *communities, 0.2, *seed)
		default:
			err = fmt.Errorf("unknown model %q", *model)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
		os.Exit(1)
	}
	if err := graph.SaveFile(*out, g); err != nil {
		fmt.Fprintf(os.Stderr, "graphgen: writing %s: %v\n", *out, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d nodes, %d edges\n", *out, g.NumNodes(), g.NumEdges())
}
