// Command experiments regenerates the paper's tables and figures on the
// dataset analogues:
//
//	experiments -run all                 # everything (minutes)
//	experiments -run fig1,table3         # a subset
//	experiments -run fig7 -seeds 30      # paper-protocol seed count
//	experiments -datasets Slashdot,Pokec # restrict datasets
//
// Experiment ids: table2, fig1, fig3, fig4, fig6, fig7, fig8, fig9,
// table3, fig10, ablation, scalability.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tpa/internal/experiments"
)

func main() {
	run := flag.String("run", "all", "comma-separated experiment ids (or 'all')")
	seeds := flag.Int("seeds", 10, "random seeds per measurement (paper: 30)")
	dsets := flag.String("datasets", "", "comma-separated dataset subset (default: per-figure datasets)")
	budget := flag.Int64("budget", 12<<20, "preprocessed-data budget in bytes (over → OOM)")
	flag.Parse()

	opt := experiments.DefaultOptions()
	opt.Seeds = *seeds
	opt.BudgetBytes = *budget
	if *dsets != "" {
		opt.Datasets = strings.Split(*dsets, ",")
	}

	ids := map[string]bool{}
	for _, id := range strings.Split(*run, ",") {
		ids[strings.TrimSpace(strings.ToLower(id))] = true
	}
	all := ids["all"]
	want := func(id string) bool { return all || ids[id] }

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	printed := 0
	if want("table2") {
		t, err := experiments.TableII(opt)
		if err != nil {
			fail(err)
		}
		fmt.Println(t)
		printed++
	}
	if want("fig1") {
		res, err := experiments.Fig1(opt)
		if err != nil {
			fail(err)
		}
		fmt.Println(res.Memory)
		fmt.Println(res.Preprocess)
		fmt.Println(res.Online)
		printed++
	}
	if want("fig3") {
		tabs, err := experiments.Fig3(opt, 8)
		if err != nil {
			fail(err)
		}
		for _, t := range tabs {
			fmt.Println(t)
		}
		printed++
	}
	if want("fig4") {
		t, err := experiments.Fig4(opt)
		if err != nil {
			fail(err)
		}
		fmt.Println(t)
		printed++
	}
	if want("fig6") {
		t, err := experiments.Fig6(opt)
		if err != nil {
			fail(err)
		}
		fmt.Println(t)
		printed++
	}
	if want("fig7") {
		t, err := experiments.Fig7(opt)
		if err != nil {
			fail(err)
		}
		fmt.Println(t)
		printed++
	}
	if want("fig8") {
		t, err := experiments.Fig8(opt)
		if err != nil {
			fail(err)
		}
		fmt.Println(t)
		printed++
	}
	if want("fig9") {
		t, err := experiments.Fig9(opt)
		if err != nil {
			fail(err)
		}
		fmt.Println(t)
		printed++
	}
	if want("table3") {
		t, err := experiments.TableIII(opt)
		if err != nil {
			fail(err)
		}
		fmt.Println(t)
		printed++
	}
	if want("scalability") {
		t, err := experiments.Scalability(opt, nil)
		if err != nil {
			fail(err)
		}
		fmt.Println(t)
		printed++
	}
	if want("ablation") {
		t, err := experiments.Ablation(opt)
		if err != nil {
			fail(err)
		}
		fmt.Println(t)
		printed++
	}
	if want("fig10") {
		res, err := experiments.Fig10(opt)
		if err != nil {
			fail(err)
		}
		fmt.Println(res.Memory)
		fmt.Println(res.Preprocess)
		fmt.Println(res.Online)
		printed++
	}
	if printed == 0 {
		fmt.Fprintf(os.Stderr, "experiments: no experiment matched %q\n", *run)
		os.Exit(2)
	}
}
