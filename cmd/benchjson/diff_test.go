package main

import (
	"regexp"
	"testing"
)

func rep(cpu string, benches map[string]float64) *report {
	r := &report{GoOS: "linux", GoArch: "amd64", CPU: cpu}
	for name, ns := range benches {
		r.Benchmarks = append(r.Benchmarks, benchResult{Name: name, Runs: 10, NsPerOp: ns})
	}
	return r
}

func TestDiffVerdicts(t *testing.T) {
	pat := regexp.MustCompile(`QueryBatch|MulT`)
	base := rep("xeon", map[string]float64{
		"BenchmarkQueryBatch/w8":      1000,
		"BenchmarkMulT/plain-natural": 2000,
		"BenchmarkSnapshotLoad":       500, // unmatched: never compared
	})
	for _, tc := range []struct {
		name string
		cur  *report
		pat  *regexp.Regexp
		want int
	}{
		{"within threshold", rep("xeon", map[string]float64{
			"BenchmarkQueryBatch/w8":      1100, // +10%
			"BenchmarkMulT/plain-natural": 1500, // improvement
		}), pat, 0},
		{"regression fails", rep("xeon", map[string]float64{
			"BenchmarkQueryBatch/w8":      1400, // +40%
			"BenchmarkMulT/plain-natural": 2000,
		}), pat, 1},
		{"missing benchmark fails", rep("xeon", map[string]float64{
			"BenchmarkQueryBatch/w8": 1000,
		}), pat, 1},
		{"unmatched benchmarks ignored", rep("xeon", map[string]float64{
			"BenchmarkQueryBatch/w8":      1000,
			"BenchmarkMulT/plain-natural": 2000,
			"BenchmarkSnapshotLoad":       50000, // 100x slower but out of scope
		}), pat, 0},
		{"hardware mismatch skips", rep("epyc", map[string]float64{
			"BenchmarkQueryBatch/w8": 99999,
		}), pat, 0},
		{"pattern drift fails", rep("xeon", map[string]float64{
			"BenchmarkQueryBatch/w8": 1000,
		}), regexp.MustCompile(`NoSuchBench`), 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if got := diff(base, tc.cur, tc.pat, 0.15); got != tc.want {
				t.Errorf("diff exit = %d, want %d", got, tc.want)
			}
		})
	}
}
