// Command benchjson converts `go test -json -bench` output on stdin into a
// compact machine-readable benchmark report on stdout, for CI to archive as
// an artifact per PR:
//
//	go test -json -bench 'SnapshotLoad|QueryBatch' -benchtime 200ms -run '^$' . \
//	    | go run ./cmd/benchjson > BENCH_ci.json
//
// It accepts both `go test -json` event streams and plain `go test -bench`
// text, so it also works locally without the -json flag. The report:
//
//	{
//	  "goos": "linux", "goarch": "amd64", "cpu": "...",
//	  "benchmarks": [
//	    {"name": "BenchmarkSnapshotLoad", "package": "tpa", "procs": 8,
//	     "runs": 14, "ns_per_op": 16420210, "metrics": {"MB/s": 389.11}}
//	  ]
//	}
//
// Exits nonzero when no benchmark lines were found, so a CI regex drift
// fails loudly instead of archiving an empty report.
//
// With -diff it compares two reports instead of converting:
//
//	go run ./cmd/benchjson -diff BENCH_baseline.json BENCH_ci.json
//
// Every benchmark whose name matches -match (default the hot serving and
// kernel paths, QueryBatch|MulT) is compared by ns/op; a slowdown beyond
// -max-regress (default 0.15 = 15%) fails the run, as does a matched
// baseline entry missing from the current report (a silently dropped
// benchmark is indistinguishable from a regression). When the two reports
// were recorded on different hardware (goos/goarch/cpu) the diff is skipped
// with a warning and exit 0 — a runner change is not a regression, and the
// committed baseline is refreshed from the first CI artifact of the new
// hardware.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// testEvent is the subset of the `go test -json` event schema we need.
type testEvent struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// benchResult is one benchmark line of the report.
type benchResult struct {
	Name    string             `json:"name"`
	Package string             `json:"package,omitempty"`
	Procs   int                `json:"procs,omitempty"`
	Runs    int64              `json:"runs"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// report is the whole document benchjson emits.
type report struct {
	GoOS       string        `json:"goos,omitempty"`
	GoArch     string        `json:"goarch,omitempty"`
	CPU        string        `json:"cpu,omitempty"`
	Benchmarks []benchResult `json:"benchmarks"`

	// pending remembers, per package, a benchmark name whose result is
	// still outstanding. `go test` writes a result line as two separate
	// Writes — the name when the benchmark starts, the numbers when it
	// finishes — and the -json wrapper turns each Write into its own
	// event, so the two halves usually arrive as separate output lines
	// and must be stitched back together.
	pending map[string]string
}

// benchLine matches "BenchmarkName-8   \t  14\t  16420210 ns/op\t 389 MB/s".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+(.+)$`)

// benchName matches the name-only first half of a split result line.
var benchName = regexp.MustCompile(`^Benchmark\S+$`)

// benchTail matches the numbers-only second half: "14\t  16420210 ns/op...".
var benchTail = regexp.MustCompile(`^\d+\s+.+$`)

func main() {
	diffBase := flag.String("diff", "", "baseline report to diff the current report against (compare mode)")
	diffMatch := flag.String("match", "QueryBatch|MulT", "regexp of benchmark names to compare in -diff mode")
	maxRegress := flag.Float64("max-regress", 0.15, "maximum tolerated fractional ns/op slowdown in -diff mode")
	flag.Parse()
	if *diffBase != "" {
		os.Exit(diffMain(*diffBase, flag.Arg(0), *diffMatch, *maxRegress))
	}
	rep, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (*report, error) {
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	rep := &report{Benchmarks: []benchResult{}}
	for sc.Scan() {
		line := sc.Text()
		pkg := ""
		// A `go test -json` stream wraps each output line in an event.
		if strings.HasPrefix(line, "{") {
			var ev testEvent
			if err := json.Unmarshal([]byte(line), &ev); err != nil || ev.Action != "output" {
				continue
			}
			pkg = ev.Package
			line = strings.TrimSuffix(ev.Output, "\n")
		}
		rep.scanLine(strings.TrimSpace(line), pkg)
	}
	return rep, sc.Err()
}

// scanLine folds one output line into the report: environment headers,
// benchmark results, everything else ignored.
func (rep *report) scanLine(line, pkg string) {
	switch {
	case strings.HasPrefix(line, "goos: "):
		rep.GoOS = strings.TrimPrefix(line, "goos: ")
	case strings.HasPrefix(line, "goarch: "):
		rep.GoArch = strings.TrimPrefix(line, "goarch: ")
	case strings.HasPrefix(line, "cpu: "):
		rep.CPU = strings.TrimPrefix(line, "cpu: ")
	}
	m := benchLine.FindStringSubmatch(line)
	if m == nil {
		// Stitch split result lines (see report.pending). A bare name
		// arms the package; the next numbers-only line completes it; any
		// other line (a log, a RUN header, a failure) disarms it.
		if rep.pending == nil {
			rep.pending = make(map[string]string)
		}
		switch {
		case benchName.MatchString(line):
			rep.pending[pkg] = line
			return
		case rep.pending[pkg] != "" && benchTail.MatchString(line):
			m = benchLine.FindStringSubmatch(rep.pending[pkg] + "   " + line)
			delete(rep.pending, pkg)
			if m == nil {
				return
			}
		default:
			delete(rep.pending, pkg)
			return
		}
	}
	res := benchResult{Name: m[1], Package: pkg}
	if m[2] != "" {
		res.Procs, _ = strconv.Atoi(m[2])
	}
	res.Runs, _ = strconv.ParseInt(m[3], 10, 64)
	// The tail is "\t"-ish separated "<value> <unit>" pairs.
	fields := strings.Fields(m[4])
	for i := 0; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return // not a result line after all (e.g. a log line)
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			res.NsPerOp = val
			continue
		}
		if res.Metrics == nil {
			res.Metrics = make(map[string]float64)
		}
		res.Metrics[unit] = val
	}
	rep.Benchmarks = append(rep.Benchmarks, res)
}

// loadReport reads a benchjson report from path, or from stdin when path is
// empty (so CI can pipe the freshly generated report straight into the diff).
func loadReport(path string) (*report, error) {
	in := os.Stdin
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		in = f
	}
	var rep report
	if err := json.NewDecoder(in).Decode(&rep); err != nil {
		return nil, fmt.Errorf("%s: %w", pathOrStdin(path), err)
	}
	return &rep, nil
}

func pathOrStdin(path string) string {
	if path == "" {
		return "stdin"
	}
	return path
}

// diffMain compares the current report against the baseline and returns the
// process exit code. Regressions beyond maxRegress in any benchmark matching
// the pattern fail, as do matched baseline benchmarks that disappeared.
func diffMain(basePath, curPath, match string, maxRegress float64) int {
	pat, err := regexp.Compile(match)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: bad -match pattern: %v\n", err)
		return 1
	}
	base, err := loadReport(basePath)
	if err == nil {
		var cur *report
		cur, err = loadReport(curPath)
		if err == nil {
			return diff(base, cur, pat, maxRegress)
		}
	}
	fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
	return 1
}

func diff(base, cur *report, pat *regexp.Regexp, maxRegress float64) int {
	// ns/op is only comparable on the same hardware; across machines the
	// baseline is stale by construction, not regressed.
	if base.GoOS != cur.GoOS || base.GoArch != cur.GoArch || base.CPU != cur.CPU {
		fmt.Fprintf(os.Stderr, "benchjson: baseline recorded on %s/%s %q, current on %s/%s %q — skipping diff; refresh the baseline on the new hardware\n",
			base.GoOS, base.GoArch, base.CPU, cur.GoOS, cur.GoArch, cur.CPU)
		return 0
	}
	curNs := make(map[string]float64, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		curNs[b.Name] = b.NsPerOp
	}
	matched, failed := 0, 0
	for _, b := range base.Benchmarks {
		if !pat.MatchString(b.Name) || b.NsPerOp <= 0 {
			continue
		}
		matched++
		now, ok := curNs[b.Name]
		if !ok {
			fmt.Printf("MISSING  %-50s baseline %.0f ns/op, absent from current report\n", b.Name, b.NsPerOp)
			failed++
			continue
		}
		delta := now/b.NsPerOp - 1
		verdict := "ok"
		if delta > maxRegress {
			verdict = "FAIL"
			failed++
		}
		fmt.Printf("%-8s %-50s %12.0f -> %12.0f ns/op  %+6.1f%%\n", verdict, b.Name, b.NsPerOp, now, 100*delta)
	}
	if matched == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no baseline benchmarks match %q — pattern drift?\n", pat)
		return 1
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d of %d benchmarks regressed more than %.0f%% (or went missing)\n",
			failed, matched, 100*maxRegress)
		return 1
	}
	fmt.Printf("benchjson: %d benchmarks within %.0f%% of baseline\n", matched, 100*maxRegress)
	return 0
}
