package tpa

import (
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// queriesAgree fails unless a and b answer every probe seed within tol,
// element-wise in external id space.
func queriesAgree(t *testing.T, tag string, a, b *Engine, seeds []int, tol float64) {
	t.Helper()
	for _, seed := range seeds {
		ra, err := a.Query(seed)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.Query(seed)
		if err != nil {
			t.Fatal(err)
		}
		if len(ra) != len(rb) {
			t.Fatalf("%s: seed %d: lengths %d vs %d", tag, seed, len(ra), len(rb))
		}
		for i := range ra {
			if d := ra[i] - rb[i]; d > tol || d < -tol {
				t.Fatalf("%s: seed %d node %d: %g vs %g (Δ %g > %g)", tag, seed, i, ra[i], rb[i], d, tol)
			}
		}
	}
}

// TestMmapSnapshotRoundTrip saves engines of every flavor as TPAM and
// reloads them through both the explicit and the sniffing entry points: the
// mapped engine must answer bit-identically to the engine it was saved
// from.
func TestMmapSnapshotRoundTrip(t *testing.T) {
	g := RandomSBMGraph(500, 5, 6, 0.9, 11)
	seeds := []int{0, 42, 337, 499}
	for _, tc := range []struct {
		name  string
		build func() (*Engine, error)
	}{
		{"natural", func() (*Engine, error) { return New(g, Defaults()) }},
		{"reordered", func() (*Engine, error) {
			o := Defaults()
			o.Order = "degree"
			return New(g, o)
		}},
		{"float32", func() (*Engine, error) {
			o := Defaults()
			o.Precision = Float32
			return New(g, o)
		}},
		{"sharded", func() (*Engine, error) { return NewSharded(g, 4, Defaults()) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			eng, err := tc.build()
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(t.TempDir(), "g.tpam")
			if err := eng.SaveSnapshotMmap(path); err != nil {
				t.Fatal(err)
			}
			loaded, err := LoadSnapshotMmap(path)
			if err != nil {
				t.Fatal(err)
			}
			defer loaded.Close()
			if loaded.NumNodes() != g.NumNodes() || loaded.NumEdges() != g.NumEdges() {
				t.Fatalf("loaded %d nodes / %d edges, want %d / %d",
					loaded.NumNodes(), loaded.NumEdges(), g.NumNodes(), g.NumEdges())
			}
			if loaded.Precision() != eng.Precision() {
				t.Fatalf("precision %v, want %v", loaded.Precision(), eng.Precision())
			}
			if (eng.Permutation() == nil) != (loaded.Permutation() == nil) {
				t.Fatal("permutation presence changed across the round trip")
			}
			if loaded.NumShards() != eng.NumShards() {
				t.Fatalf("shards %d, want %d", loaded.NumShards(), eng.NumShards())
			}
			queriesAgree(t, tc.name, eng, loaded, seeds, 0)

			// The sniffing loader must take the mmap path for .tpam files.
			sniffed, err := LoadSnapshotFile(path)
			if err != nil {
				t.Fatal(err)
			}
			defer sniffed.Close()
			if sniffed.snap == nil {
				t.Fatal("LoadSnapshotFile did not detect the TPAM container")
			}
			queriesAgree(t, tc.name+"-sniffed", eng, sniffed, seeds[:1], 0)
		})
	}
}

// TestMmapEngineRestrictions pins the mmap engine's contract: no dynamic
// updates, idempotent Close, typed failure after Close.
func TestMmapEngineRestrictions(t *testing.T) {
	g := RandomSBMGraph(200, 4, 5, 0.9, 7)
	eng, err := New(g, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.tpam")
	if err := eng.SaveSnapshotMmap(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSnapshotMmap(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := loaded.ApplyEdges([][2]int{{0, 1}}, nil); !errors.Is(err, ErrNotMutable) {
		t.Fatalf("ApplyEdges on mmap engine: %v, want ErrNotMutable", err)
	}
	if mapped, heap := loaded.StorageBytes(); mapped == 0 && heap == 0 {
		t.Fatal("StorageBytes reported nothing for a loaded snapshot")
	}
	if err := loaded.Close(); err != nil {
		t.Fatal(err)
	}
	if err := loaded.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestShardedEngineEquivalence is the sharded-correctness crux: for shard
// counts 1, 2 and 7 the scatter-gather engine must agree with the plain
// engine element-wise to 1e-12 in external id space — the shard plan
// relabels nodes, so any leak of internal ids would misroute whole scores.
func TestShardedEngineEquivalence(t *testing.T) {
	g := RandomSBMGraph(600, 6, 6, 0.9, 13)
	base, err := New(g, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	seeds := []int{0, 1, 99, 300, 599}
	for _, shards := range []int{1, 2, 7} {
		eng, err := NewSharded(g, shards, Defaults())
		if err != nil {
			t.Fatal(err)
		}
		if want := shards; eng.NumShards() != want {
			t.Fatalf("%d-way build reports %d shards", shards, eng.NumShards())
		}
		if shards > 1 {
			nodes, edges := eng.ShardLayout()
			tn, te := 0, int64(0)
			for i := range nodes {
				tn += nodes[i]
				te += edges[i]
			}
			if tn != g.NumNodes() || te != g.NumEdges() {
				t.Fatalf("shard layout covers %d nodes / %d edges, want %d / %d",
					tn, te, g.NumNodes(), g.NumEdges())
			}
			if _, _, err := eng.ApplyEdges([][2]int{{0, 1}}, nil); !errors.Is(err, ErrNotMutable) {
				t.Fatalf("ApplyEdges on sharded engine: %v, want ErrNotMutable", err)
			}
		}
		queriesAgree(t, "shards", base, eng, seeds, 1e-12)

		top, err := eng.TopK(seeds[2], 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(top) != 10 {
			t.Fatalf("TopK returned %d entries", len(top))
		}
		batch, err := eng.QueryBatch(seeds, 2)
		if err != nil {
			t.Fatal(err)
		}
		for i, seed := range seeds {
			single, err := eng.Query(seed)
			if err != nil {
				t.Fatal(err)
			}
			for j := range single {
				if batch[i][j] != single[j] {
					t.Fatalf("batch result differs from single query at seed %d node %d", seed, j)
				}
			}
		}
	}
}

// TestMmapZeroCopyLoad proves the zero-copy claim the format exists for:
// loading a TPAM snapshot must allocate O(1) heap in graph size. The graph
// below carries ~1.2 MB of arrays; the load must stay under 256 KiB of
// allocations (views, headers and engine structs — nothing proportional).
func TestMmapZeroCopyLoad(t *testing.T) {
	g := RandomSBMGraph(20_000, 10, 8, 0.9, 3)
	eng, err := New(g, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.tpam")
	if err := eng.SaveSnapshotMmap(path); err != nil {
		t.Fatal(err)
	}
	probe, err := LoadSnapshotMmap(path)
	if err != nil {
		t.Fatal(err)
	}
	if !probe.Mapped() {
		probe.Close()
		t.Skip("mmap unavailable on this platform; heap fallback in use")
	}
	probe.Close()

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	loaded, err := LoadSnapshotMmap(path)
	if err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	defer loaded.Close()
	alloc := after.TotalAlloc - before.TotalAlloc
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if alloc > 256<<10 {
		t.Fatalf("zero-copy load allocated %d bytes for a %d-byte snapshot", alloc, st.Size())
	}
	if _, err := loaded.Query(0); err != nil {
		t.Fatal(err)
	}
}
