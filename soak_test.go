package tpa_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"tpa"
)

// TestIngestSoakCrashResume is the CI ingest-soak gate (env-gated: set
// TPA_SOAK=1; TPA_SOAK_DURATION overrides the default 20s storm). It
// drives the real tpad binary end-to-end:
//
//  1. build tpad (with -race), serve a snapshot with -wal,
//  2. storm it with concurrent edge mutations and top-k queries,
//  3. kill -9 the server mid-ingest (acked events still queued),
//  4. replay the surviving WAL in-process on the same base snapshot as a
//     reference, and assert the edge set matches the acked mutation
//     history exactly,
//  5. restart the server on the same -wal dir and assert its served
//     scores match the reference to 1e-12.
func TestIngestSoakCrashResume(t *testing.T) {
	if os.Getenv("TPA_SOAK") == "" {
		t.Skip("set TPA_SOAK=1 to run the ingest soak (builds tpad, mutation storm, kill -9, replay check)")
	}
	stormFor := 20 * time.Second
	if s := os.Getenv("TPA_SOAK_DURATION"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil {
			t.Fatalf("TPA_SOAK_DURATION: %v", err)
		}
		stormFor = d
	}

	dir := t.TempDir()
	bin := filepath.Join(dir, "tpad")
	if out, err := exec.Command("go", "build", "-race", "-o", bin, "./cmd/tpad").CombinedOutput(); err != nil {
		t.Fatalf("building tpad: %v\n%s", err, out)
	}

	// Base graph as a snapshot: both server processes and the in-process
	// reference cold-start from the identical artifact.
	const n = 5000
	g := tpa.RandomSBMGraph(n, 8, 10, 0.9, 42)
	eng, err := tpa.New(g, tpa.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(dir, "soak.tpas")
	if err := eng.SaveSnapshotFile(snap); err != nil {
		t.Fatal(err)
	}

	walRoot := filepath.Join(dir, "wal")
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	base := "http://" + addr
	serve := func() *exec.Cmd {
		cmd := exec.Command(bin, "serve", "-graph", snap, "-addr", addr,
			"-wal", walRoot, "-fsync", "batch", "-ingest-batch-age", "5ms",
			"-compact-staleness", "0", "-compact-wal-bytes", "0")
		cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting tpad: %v", err)
		}
		for i := 0; ; i++ {
			resp, err := http.Get(base + "/healthz")
			if err == nil {
				resp.Body.Close()
				break
			}
			if i > 200 {
				t.Fatalf("server on %s never became healthy: %v", addr, err)
			}
			time.Sleep(50 * time.Millisecond)
		}
		return cmd
	}
	cmd := serve()

	// The storm: writers posting random batches, queriers hammering topk.
	type acked struct {
		seq           uint64
		adds, removes [][2]int
	}
	var mu sync.Mutex
	var acks []acked
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for wid := 0; wid < 4; wid++ {
		wid := wid
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + wid)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				var req struct {
					Add    [][2]int `json:"add,omitempty"`
					Remove [][2]int `json:"remove,omitempty"`
				}
				for i := 0; i < 2+rng.Intn(5); i++ {
					req.Add = append(req.Add, [2]int{rng.Intn(n), rng.Intn(n)})
				}
				for i := 0; i < rng.Intn(3); i++ {
					req.Remove = append(req.Remove, [2]int{rng.Intn(n), rng.Intn(n)})
				}
				body, _ := json.Marshal(req)
				resp, err := http.Post(base+"/graphs/default/edges", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("writer %d: %v", wid, err)
					return
				}
				var ack struct {
					Seq     uint64 `json:"seq"`
					Dropped bool   `json:"dropped"`
				}
				err = json.NewDecoder(resp.Body).Decode(&ack)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusAccepted {
					t.Errorf("writer %d: status %d err %v", wid, resp.StatusCode, err)
					return
				}
				if !ack.Dropped {
					mu.Lock()
					acks = append(acks, acked{ack.Seq, req.Add, req.Remove})
					mu.Unlock()
				}
			}
		}()
	}
	for qid := 0; qid < 4; qid++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(fmt.Sprintf("%s/topk?seed=%d&k=10", base, rng.Intn(n)))
				if err == nil {
					resp.Body.Close()
				}
				time.Sleep(time.Millisecond)
			}
		}(int64(200 + qid))
	}
	time.Sleep(stormFor)
	close(stop)
	wg.Wait() // every in-flight request acked before the crash

	// Crash hard, mid-ingest: acked events may still be queued unapplied —
	// exactly the window the WAL exists for.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	t.Logf("soak: killed server after %v with %d acked batches", stormFor, len(acks))

	// Reference: same snapshot, same WAL, replayed in this process.
	refBase, err := tpa.LoadSnapshotFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	ref, stats, err := refBase.ReplayWAL(filepath.Join(walRoot, "default"))
	if err != nil {
		t.Fatalf("reference replay: %v", err)
	}
	t.Logf("soak: reference replayed %d records (%d applies, %d edges, torn=%v)",
		stats.Records, stats.Applies, stats.Edges, stats.Truncated)

	// Set-semantic ground truth: the acked history in WAL-sequence order
	// must land on exactly the replayed edge set.
	mu.Lock()
	sort.Slice(acks, func(i, j int) bool { return acks[i].seq < acks[j].seq })
	mu.Unlock()
	edges := map[[2]int]struct{}{}
	for u := 0; u < g.NumNodes(); u++ {
		for _, v := range g.OutNeighbors(u) {
			edges[[2]int{u, int(v)}] = struct{}{}
		}
	}
	for _, a := range acks {
		for _, e := range a.adds {
			edges[e] = struct{}{}
		}
		for _, e := range a.removes {
			delete(edges, e)
		}
	}
	if int64(len(edges)) != ref.NumEdges() {
		t.Fatalf("replayed engine has %d edges, acked history implies %d", ref.NumEdges(), len(edges))
	}

	// Restart on the same WAL and compare served scores to the reference.
	cmd = serve()
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 25; i++ {
		seed, node := rng.Intn(n), rng.Intn(n)
		resp, err := http.Get(fmt.Sprintf("%s/score?seed=%d&node=%d", base, seed, node))
		if err != nil {
			t.Fatal(err)
		}
		var got struct {
			Score float64 `json:"score"`
		}
		err = json.NewDecoder(resp.Body).Decode(&got)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		scores, err := ref.Query(seed)
		if err != nil {
			t.Fatal(err)
		}
		if diff := got.Score - scores[node]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("seed %d node %d: restarted server scores %.17g, reference %.17g",
				seed, node, got.Score, scores[node])
		}
	}
}
