package tpa

import (
	"fmt"

	"tpa/internal/core"
	"tpa/internal/graph"
	"tpa/internal/reorder"
	"tpa/internal/shard"
)

// shardLPRounds is the label-propagation sweep count NewSharded uses to
// discover community structure before cutting shard boundaries — the same
// default as the NB-LIN partitioner.
const shardLPRounds = 10

// NewSharded is New with the graph partitioned into shards contiguous node
// ranges that every Ãᵀ application scatter-gathers across: preprocessing
// and queries fan out one goroutine per shard, each filling only its own
// destination range. Shard boundaries follow community structure (label
// propagation, merged into exactly shards balanced groups), so each shard's
// working set stays dense — node ids remain the caller's, remapped at the
// API boundary exactly like Options.Order.
//
// Answers agree with an unsharded engine to float-summation order: the
// gather kernel computes every destination row independently, so the
// partition changes scheduling, not arithmetic. shards ≤ 1 builds a plain
// engine. Sharding supplies its own layout, so it cannot combine with
// Options.Order or Options.Tile, and sharded engines reject ApplyEdges —
// rebuild to mutate.
func NewSharded(g *Graph, shards int, o Options) (*Engine, error) {
	if shards <= 1 {
		return New(g, o)
	}
	if ord, err := reorder.ParseOrder(o.Order); err != nil {
		return nil, fmt.Errorf("tpa: %w", err)
	} else if ord != reorder.OrderNatural {
		return nil, fmt.Errorf("tpa: Options.Order %q cannot combine with sharding (the shard plan is the ordering)", o.Order)
	}
	if o.Tile != 0 {
		return nil, fmt.Errorf("tpa: Options.Tile cannot combine with sharding (shards already block the gather)")
	}
	cfg, params := o.split()
	plan, err := shard.PlanShards(g, shards, shardLPRounds)
	if err != nil {
		return nil, fmt.Errorf("tpa: sharding: %w", err)
	}
	pg := g
	var inv []int32
	if plan.Perm != nil {
		if pg, err = graph.Permute(g, plan.Perm); err != nil {
			return nil, fmt.Errorf("tpa: sharding: %w", err)
		}
		inv = graph.InvertPermutation(plan.Perm)
	}
	w := graph.NewWalk(pg, graph.DanglingSelfLoop)
	op, err := shard.NewOperator(w, plan.Bounds)
	if err != nil {
		return nil, fmt.Errorf("tpa: sharding: %w", err)
	}
	tp, err := core.PreprocessParallel(op, cfg, params, o.Workers)
	if err != nil {
		return nil, fmt.Errorf("tpa: preprocessing: %w", err)
	}
	if err := tp.SetPrecision(o.Precision); err != nil {
		return nil, fmt.Errorf("tpa: %w", err)
	}
	e := &Engine{tpa: tp, walk: w, shardOp: op, workers: o.Workers,
		perm: plan.Perm, inv: inv}
	e.applyMutationOpts(o)
	return e, nil
}

// NumShards returns the number of scatter-gather shards the engine fans
// queries across: 1 for unsharded engines.
func (e *Engine) NumShards() int {
	if e.shardOp == nil {
		return 1
	}
	return e.shardOp.NumShards()
}

// ShardLayout returns per-shard node and out-edge counts (indexed by shard),
// or nil for unsharded engines. For introspection, stats endpoints and
// tests; the counts describe the internal (shard-contiguous) layout.
func (e *Engine) ShardLayout() (nodes []int, edges []int64) {
	if e.shardOp == nil {
		return nil, nil
	}
	stats := e.shardOp.ShardStats()
	nodes = make([]int, len(stats))
	edges = make([]int64, len(stats))
	for i, s := range stats {
		nodes[i] = s.Nodes
		edges[i] = s.Edges
	}
	return nodes, edges
}
